(** Common interface for the reference-counting schemes compared in
    Figure 8: Refcache, a shared atomic counter, SNZI, and a distributed
    per-core counter. The benchmark and tests are functorized over this so
    every scheme runs the identical workload. *)

module type S = sig
  type t
  (** The counting subsystem (per-machine state). *)

  type handle
  (** One reference-counted object. *)

  val name : string

  val create : Ccsim.Machine.t -> t

  val make :
    t -> Ccsim.Core.t -> init:int -> on_free:(Ccsim.Core.t -> unit) -> handle
  (** A counter starting at [init]; [on_free] fires (once) when the scheme
      concludes the count has reached zero for good. *)

  val inc : t -> Ccsim.Core.t -> handle -> unit
  val dec : t -> Ccsim.Core.t -> handle -> unit

  val value : t -> handle -> int
  (** True current value; uncharged, for tests. *)

  val bytes_per_object : Ccsim.Params.t -> int
  (** Modeled per-object space, to reproduce the paper's space argument
      (Refcache is O(1) per object; SNZI and distributed counters are
      O(cores) per object). *)
end
