lib/refcache/distributed_counter.ml: Array Ccsim Cell Core Machine Params
