lib/refcache/refcache.mli: Ccsim
