lib/refcache/counter_intf.ml: Ccsim
