lib/refcache/shared_counter.ml: Ccsim Cell Core Params
