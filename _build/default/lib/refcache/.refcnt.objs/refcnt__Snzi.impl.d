lib/refcache/snzi.ml: Array Ccsim Cell Core Machine Params
