lib/refcache/refcache.ml: Array Ccsim Cell Core Line Lock Machine Params Queue
