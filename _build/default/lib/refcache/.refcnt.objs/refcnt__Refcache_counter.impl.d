lib/refcache/refcache_counter.ml: Ccsim Refcache
