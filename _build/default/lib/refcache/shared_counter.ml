(** A single shared atomic reference count — the conventional scheme and
    Figure 8's flat baseline. Every inc/dec is a fetch-add on one cache
    line, so all cores serialize at that line. Zero is detected
    immediately. *)

open Ccsim

type t = unit

type handle = {
  cell : int Cell.t;
  on_free : Core.t -> unit;
  mutable freed : bool;
}

let name = "shared"
let create _machine = ()

let make () core ~init ~on_free =
  if init < 0 then invalid_arg "Shared_counter.make";
  { cell = Cell.make core init; on_free; freed = false }

let inc () core h =
  assert (not h.freed);
  ignore (Cell.fetch_add core h.cell 1)

let dec () core h =
  assert (not h.freed);
  let old = Cell.fetch_add core h.cell (-1) in
  if old = 1 then begin
    h.freed <- true;
    h.on_free core
  end

let value () h = Cell.peek h.cell
let bytes_per_object (_ : Params.t) = 8
