(** Scalable NonZero Indicator (Ellen et al., PODC 2007), simplified.

    A per-object binary tree of counters. Cores are assigned to leaves in
    small groups; a leaf increment that takes a node's count from zero
    propagates one activation up, so under sustained non-zero counts most
    operations stay near the incrementing core. When the count repeatedly
    crosses zero — exactly the mmap/munmap pattern of Figure 8 — updates
    keep reaching the root and its cache line becomes a bottleneck, which
    is why SNZI plateaus around 10 cores in the paper.

    Invariant: an interior node's count is the number of its children with
    non-zero counts; a leaf's count is the references held by its cores.
    The object is dead when the root reaches zero. Space is O(cores) per
    object — part of the paper's space argument for Refcache. *)

open Ccsim

type t = { machine : Machine.t; leaf_group : int }

type handle = {
  nodes : int Cell.t array;  (* binary heap layout; node 0 is the root *)
  nleaves : int;
  leaf_group : int;
  on_free : Core.t -> unit;
  mutable freed : bool;
}

let name = "snzi"
let create machine = { machine; leaf_group = 2 }

let round_up_pow2 n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

let leaf_of h (core : Core.t) =
  let group = core.Core.id / h.leaf_group mod h.nleaves in
  h.nleaves - 1 + group

let make t core ~init ~on_free =
  if init < 0 then invalid_arg "Snzi.make";
  let ncores = Machine.ncores t.machine in
  let nleaves = round_up_pow2 ((ncores + t.leaf_group - 1) / t.leaf_group) in
  let nnodes = (2 * nleaves) - 1 in
  let h =
    {
      nodes = Array.init nnodes (fun _ -> Cell.make core 0);
      nleaves;
      leaf_group = t.leaf_group;
      on_free;
      freed = false;
    }
  in
  (* Seed the initial references at the creator's leaf (uncharged setup). *)
  if init > 0 then begin
    let rec activate i =
      if i > 0 then begin
        let parent = (i - 1) / 2 in
        Cell.poke h.nodes.(parent) (Cell.peek h.nodes.(parent) + 1);
        if Cell.peek h.nodes.(parent) = 1 then activate parent
      end
    in
    let leaf = leaf_of h core in
    Cell.poke h.nodes.(leaf) init;
    activate leaf
  end;
  h

let rec inc_node core h i =
  let old = Cell.fetch_add core h.nodes.(i) 1 in
  if old = 0 && i > 0 then inc_node core h ((i - 1) / 2)

let rec dec_node core h i =
  let old = Cell.fetch_add core h.nodes.(i) (-1) in
  assert (old >= 1);
  if old = 1 then
    if i > 0 then dec_node core h ((i - 1) / 2)
    else begin
      h.freed <- true;
      h.on_free core
    end

let inc _t core h =
  assert (not h.freed);
  inc_node core h (leaf_of h core)

(* SNZI departures must happen where the arrival did; our interface carries
   no arrival token, so a core whose own leaf is empty (the reference was
   taken on another core) pays to find a leaf with surplus — the extra
   communication a real system would need to route the departure. *)
let dec _t core h =
  assert (not h.freed);
  let own = leaf_of h core in
  let leaf =
    if Cell.read core h.nodes.(own) > 0 then own
    else begin
      let found = ref (-1) in
      let i = ref (h.nleaves - 1) in
      while !found < 0 && !i < Array.length h.nodes do
        if Cell.read core h.nodes.(!i) > 0 then found := !i;
        incr i
      done;
      if !found < 0 then invalid_arg "Snzi.dec: count underflow";
      !found
    end
  in
  dec_node core h leaf

let value _t h =
  let total = ref 0 in
  for i = h.nleaves - 1 to Array.length h.nodes - 1 do
    total := !total + Cell.peek h.nodes.(i)
  done;
  !total

let bytes_per_object (p : Params.t) =
  let nleaves = round_up_pow2 ((p.Params.ncores + 1) / 2) in
  ((2 * nleaves) - 1) * 8
