(** Distributed (per-core) reference counter — the classic scalable-counter
    design discussed in section 2: one counter word per core per object.
    Increments are purely local, but discovering the true total (needed to
    detect zero on every decrement that might be the last) requires reading
    every core's word, and space is O(cores) per object — the two costs
    Refcache is designed to avoid. *)

open Ccsim

type t = { ncores : int }

type handle = {
  cells : int Cell.t array;  (* one line per core *)
  on_free : Core.t -> unit;
  mutable freed : bool;
}

let name = "distributed"
let create machine = { ncores = Machine.ncores machine }

let make t core ~init ~on_free =
  if init < 0 then invalid_arg "Distributed_counter.make";
  let cells = Array.init t.ncores (fun _ -> Cell.make core 0) in
  Cell.poke cells.(core.Core.id) init;
  { cells; on_free; freed = false }

let inc _t (core : Core.t) h =
  assert (not h.freed);
  ignore (Cell.fetch_add core h.cells.(core.Core.id) 1)

let dec t (core : Core.t) h =
  assert (not h.freed);
  ignore (Cell.fetch_add core h.cells.(core.Core.id) (-1));
  (* Zero detection: sum every per-core word. *)
  let total = ref 0 in
  for i = 0 to t.ncores - 1 do
    total := !total + Cell.read core h.cells.(i)
  done;
  if !total = 0 then begin
    h.freed <- true;
    h.on_free core
  end

let value _t h =
  Array.fold_left (fun acc c -> acc + Cell.peek c) 0 h.cells

let bytes_per_object (p : Params.t) = p.Params.ncores * 64
