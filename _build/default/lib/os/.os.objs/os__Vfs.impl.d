lib/os/vfs.ml: Hashtbl
