lib/os/kernel.mli: Ccsim Stdlib Vfs Vm
