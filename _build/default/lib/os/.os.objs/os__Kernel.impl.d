lib/os/kernel.ml: Ccsim Core Hashtbl List Machine Params Stdlib Vfs Vm
