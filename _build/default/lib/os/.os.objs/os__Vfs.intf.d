lib/os/vfs.mli:
