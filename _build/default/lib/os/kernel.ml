open Ccsim
module R = Vm.Radixvm.Default

type errno = EINVAL | ENOENT | ESRCH | ECHILD

type 'a result = ('a, errno) Stdlib.result

let errno_to_string = function
  | EINVAL -> "EINVAL"
  | ENOENT -> "ENOENT"
  | ESRCH -> "ESRCH"
  | ECHILD -> "ECHILD"

type state = Running | Zombie of int

type process = {
  pid : int;
  mutable vm : R.t;
  mutable brk : int;  (* heap end in pages; heap is [heap_base, brk) *)
  mutable text_pages : int;
  mutable state : state;
  mutable parent : int;
  mutable children : int list;
}

type t = {
  machine : Machine.t;
  vfs : Vfs.t;
  procs : (int, process) Hashtbl.t;
  mutable next_pid : int;
  init : process;
}

(* Conventional layout, in pages (the space covers 2^36 pages). *)
let text_base = 0x400
let heap_base = 0x100_000
let stack_pages = 64
let stack_base = (1 lsl 30) - stack_pages

(* Kernel entry: mode switch, register save, dispatch. *)
let syscall_entry (core : Core.t) =
  Core.tick core (3 * core.Core.params.Params.op_cost)

let boot machine =
  let core0 = Machine.core machine 0 in
  let init_vm = R.create machine in
  (* init gets a stack but no text: it exists to be forked from *)
  R.mmap init_vm core0 ~vpn:stack_base ~npages:stack_pages ();
  let init =
    {
      pid = 1;
      vm = init_vm;
      brk = heap_base;
      text_pages = 0;
      state = Running;
      parent = 1;
      children = [];
    }
  in
  let t =
    { machine; vfs = Vfs.create (); procs = Hashtbl.create 16; next_pid = 2; init }
  in
  Hashtbl.replace t.procs 1 init;
  t

let vfs t = t.vfs
let init_process t = t.init
let pid p = p.pid
let parent_pid p = p.parent
let alive p = p.state = Running
let process_count t = Hashtbl.length t.procs
let vm p = p.vm
let brk p = p.brk

let check_running p = if p.state <> Running then Error ESRCH else Ok ()

let sys_fork t core p =
  syscall_entry core;
  match check_running p with
  | Error _ as e -> e
  | Ok () ->
      let child_vm = R.fork p.vm core in
      let child =
        {
          pid = t.next_pid;
          vm = child_vm;
          brk = p.brk;
          text_pages = p.text_pages;
          state = Running;
          parent = p.pid;
          children = [];
        }
      in
      t.next_pid <- t.next_pid + 1;
      Hashtbl.replace t.procs child.pid child;
      p.children <- child.pid :: p.children;
      Ok child

let sys_exec t core p ~path =
  syscall_entry core;
  match check_running p with
  | Error _ as e -> e
  | Ok () -> (
      match Vfs.open_file t.vfs path with
      | None -> Error ENOENT
      | Some fd ->
          let text_pages =
            match Vfs.size_pages t.vfs fd with Some n -> n | None -> 0
          in
          (* Tear down the old image; keep the kernel-shared state (page
             cache, counters) by building the replacement from it. *)
          let fresh = R.create_with ~share_state:p.vm t.machine in
          R.destroy p.vm core;
          p.vm <- fresh;
          R.mmap p.vm core ~vpn:text_base ~npages:text_pages
            ~prot:Vm.Vm_types.Read_only ~backing:(Vm.Vm_types.File fd) ();
          R.mmap p.vm core ~vpn:stack_base ~npages:stack_pages ();
          p.brk <- heap_base;
          p.text_pages <- text_pages;
          Ok ())

let sys_exit t core p ~code =
  syscall_entry core;
  if p.state = Running then begin
    R.destroy p.vm core;
    p.state <- Zombie code;
    (* Orphans go to init. *)
    List.iter
      (fun cpid ->
        match Hashtbl.find_opt t.procs cpid with
        | Some c ->
            c.parent <- 1;
            t.init.children <- cpid :: t.init.children
        | None -> ())
      p.children;
    p.children <- []
  end

let sys_wait t p =
  let rec find = function
    | [] -> None
    | cpid :: rest -> (
        match Hashtbl.find_opt t.procs cpid with
        | Some { state = Zombie code; _ } -> Some (cpid, code, rest)
        | Some _ | None -> (
            match find rest with
            | Some (z, c, remaining) -> Some (z, c, cpid :: remaining)
            | None -> None))
  in
  if p.children = [] then Error ECHILD
  else
    match find p.children with
    | Some (zpid, code, remaining) ->
        p.children <- remaining;
        Hashtbl.remove t.procs zpid;
        Ok (zpid, code)
    | None -> Error ECHILD

let sys_sbrk _t core p ~pages =
  syscall_entry core;
  match check_running p with
  | Error e -> Error e
  | Ok () ->
      let old = p.brk in
      let next = old + pages in
      if next < heap_base || next > stack_base then Error EINVAL
      else begin
        if pages > 0 then R.mmap p.vm core ~vpn:old ~npages:pages ()
        else if pages < 0 then R.munmap p.vm core ~vpn:next ~npages:(-pages);
        p.brk <- next;
        Ok old
      end

let check_range p ~vpn ~npages =
  if npages <= 0 || vpn < 0 || vpn + npages > R.address_space_pages p.vm then
    Error EINVAL
  else Ok ()

let sys_mmap t core p ~vpn ~npages ?(prot = Vm.Vm_types.Read_write) ?file () =
  syscall_entry core;
  match (check_running p, check_range p ~vpn ~npages) with
  | (Error _ as e), _ | _, (Error _ as e) -> e
  | Ok (), Ok () -> (
      match file with
      | None ->
          R.mmap p.vm core ~vpn ~npages ~prot ();
          Ok ()
      | Some fd -> (
          match Vfs.size_pages t.vfs fd with
          | None -> Error EINVAL
          | Some size when npages > size -> Error EINVAL
          | Some _ ->
              R.mmap p.vm core ~vpn ~npages ~prot
                ~backing:(Vm.Vm_types.File fd) ();
              Ok ()))

let sys_munmap _t core p ~vpn ~npages =
  syscall_entry core;
  match (check_running p, check_range p ~vpn ~npages) with
  | (Error _ as e), _ | _, (Error _ as e) -> e
  | Ok (), Ok () ->
      R.munmap p.vm core ~vpn ~npages;
      Ok ()

let sys_mprotect _t core p ~vpn ~npages prot =
  syscall_entry core;
  match (check_running p, check_range p ~vpn ~npages) with
  | (Error _ as e), _ | _, (Error _ as e) -> e
  | Ok (), Ok () ->
      R.mprotect p.vm core ~vpn ~npages prot;
      Ok ()

let store _t core p ~vpn value =
  if p.state <> Running then Vm.Vm_types.Segfault
  else R.store p.vm core ~vpn value

let load _t core p ~vpn =
  if p.state <> Running then None else R.load p.vm core ~vpn
