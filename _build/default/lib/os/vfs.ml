type fd = int

type t = {
  by_name : (string, fd) Hashtbl.t;
  sizes : (fd, int) Hashtbl.t;
  mutable next_fd : int;
}

let create () =
  { by_name = Hashtbl.create 16; sizes = Hashtbl.create 16; next_fd = 3 }

let create_file t ~name ~pages =
  if pages <= 0 then invalid_arg "Vfs.create_file";
  match Hashtbl.find_opt t.by_name name with
  | Some fd ->
      Hashtbl.replace t.sizes fd pages;
      fd
  | None ->
      let fd = t.next_fd in
      t.next_fd <- fd + 1;
      Hashtbl.replace t.by_name name fd;
      Hashtbl.replace t.sizes fd pages;
      fd

let open_file t name = Hashtbl.find_opt t.by_name name
let size_pages t fd = Hashtbl.find_opt t.sizes fd
let file_count t = Hashtbl.length t.sizes
