(** A minimal in-memory file system: named files with fixed sizes whose
    page contents come from {!Vm.Page_cache.file_content}. Exists so the
    syscall layer can validate file-backed mmaps (bad fd, range beyond
    EOF) and share file pages between processes through the page cache. *)

type t
type fd = int

val create : unit -> t

val create_file : t -> name:string -> pages:int -> fd
(** Create (or truncate) a file of [pages] pages; returns its fd. *)

val open_file : t -> string -> fd option
val size_pages : t -> fd -> int option
(** [None] for an unknown fd. *)

val file_count : t -> int
