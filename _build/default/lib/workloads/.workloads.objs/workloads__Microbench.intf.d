lib/workloads/microbench.mli: Ccsim Format Vm
