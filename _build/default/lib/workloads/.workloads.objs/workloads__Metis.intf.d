lib/workloads/metis.mli: Ccsim Format Vm
