lib/workloads/counter_bench.mli: Format Refcnt
