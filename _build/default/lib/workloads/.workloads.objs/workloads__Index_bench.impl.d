lib/workloads/index_bench.ml: Array Ccsim Core Format Machine Params Radix Random Refcnt Stats Structures Sys
