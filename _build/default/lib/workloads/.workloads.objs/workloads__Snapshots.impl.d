lib/workloads/snapshots.ml: Baselines Ccsim Format List Machine Params Random Vm
