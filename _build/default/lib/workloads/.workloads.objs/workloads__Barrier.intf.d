lib/workloads/barrier.mli: Ccsim
