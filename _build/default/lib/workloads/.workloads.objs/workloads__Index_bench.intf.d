lib/workloads/index_bench.mli: Format
