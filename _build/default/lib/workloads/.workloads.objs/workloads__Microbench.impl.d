lib/workloads/microbench.ml: Array Barrier Ccsim Channel Core Format List Machine Params Random Stats Sys Vm
