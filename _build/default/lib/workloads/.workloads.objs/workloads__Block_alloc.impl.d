lib/workloads/block_alloc.ml: Array Ccsim Vm
