lib/workloads/metis.ml: Array Barrier Block_alloc Ccsim Core Format Line List Machine Params Random Stats Vm
