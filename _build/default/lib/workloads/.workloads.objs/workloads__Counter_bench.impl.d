lib/workloads/counter_bench.ml: Array Ccsim Core Format Machine Params Physmem Refcnt Stats Vm
