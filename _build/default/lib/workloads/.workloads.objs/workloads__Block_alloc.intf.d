lib/workloads/block_alloc.mli: Ccsim Vm
