lib/workloads/barrier.ml: Ccsim Cell
