lib/workloads/snapshots.mli: Format
