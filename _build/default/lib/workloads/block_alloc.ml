type percore = {
  base : int;  (* start of this core's address range *)
  mutable next_block : int;  (* offset, in pages, of the next fresh block *)
  mutable bump : int;  (* next free page within the current block *)
  mutable block_end : int;  (* one past the current block *)
}

module Make (V : Vm.Vm_intf.S) = struct
  type t = {
    vm : V.t;
    unit_pages : int;
    percore : percore array;
    mutable blocks : int;
  }

  (* Each core's arena: 2^24 pages (64 GB) of virtual space, far apart so
     per-thread pools never share radix leaves or page-table lines. *)
  let arena_pages = 1 lsl 24

  let create vm ~unit_pages ~ncores =
    if unit_pages <= 0 then invalid_arg "Block_alloc.create";
    {
      vm;
      unit_pages;
      percore =
        Array.init ncores (fun c ->
            let base = (c + 1) * arena_pages in
            { base; next_block = 0; bump = 0; block_end = 0 });
      blocks = 0;
    }

  let alloc_pages t (core : Ccsim.Core.t) n =
    if n <= 0 || n > t.unit_pages then invalid_arg "Block_alloc.alloc_pages";
    let pc = t.percore.(core.Ccsim.Core.id) in
    if pc.bump + n > pc.block_end then begin
      (* Map a fresh block; the old block's tail is wasted (bump alloc). *)
      let vpn = pc.base + pc.next_block in
      V.mmap t.vm core ~vpn ~npages:t.unit_pages ();
      t.blocks <- t.blocks + 1;
      pc.next_block <- pc.next_block + t.unit_pages;
      pc.bump <- vpn;
      pc.block_end <- vpn + t.unit_pages
    end;
    let vpn = pc.bump in
    pc.bump <- vpn + n;
    vpn

  let blocks_mapped t = t.blocks
end
