(** Table 2: memory overhead of address-space representations.

    The paper snapshots the VM state of four applications (Firefox,
    Chrome, Apache, MySQL) and compares Linux's representation (compact
    VMA objects in a red-black tree, plus the shared hardware page table
    holding physical-page bindings) against RadixVM's radix tree (which
    stores metadata and page bindings together).

    We cannot snapshot those binaries, so each profile is a synthetic
    layout generator calibrated to the paper's reported numbers: VMA
    count, resident set size, and mapped-region size distribution. The
    measurement itself is real: the layout is loaded into an actual
    Linux-baseline VM and an actual RadixVM instance, and the reported
    bytes come from their live data structures. *)

type profile = {
  name : string;
  vma_count : int;  (** number of mapped regions *)
  rss_pages : int;  (** resident (faulted) pages *)
  seed : int;
}

val firefox : profile
val chrome : profile
val apache : profile
val mysql : profile
val all : profile list

type row = {
  profile : profile;
  rss_bytes : int;
  linux_vma_bytes : int;
  linux_pt_bytes : int;
  radix_bytes : int;
  ratio : float;  (** radix / (vma + pt), the paper's "(rel. to Linux)" *)
}

val measure : profile -> row
val pp_row : Format.formatter -> row -> unit
