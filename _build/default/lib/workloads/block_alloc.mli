(** The custom memory allocator used for the Metis experiments (section
    5.1): intentionally trivial so the benchmark measures the VM system
    rather than allocator cleverness. Memory is mapped in fixed-size blocks
    (the "allocation unit": 64 KB to stress mmap, 8 MB to stress
    pagefault), carved with a per-core bump pointer, kept on exclusively
    per-core state, and never returned to the OS. *)

module Make (V : Vm.Vm_intf.S) : sig
  type t

  val create :
    V.t -> unit_pages:int -> ncores:int -> t
  (** Each core [c] allocates inside its own address range; blocks are
      [unit_pages] pages. *)

  val alloc_pages : t -> Ccsim.Core.t -> int -> int
  (** [alloc_pages t core n] returns the first VPN of [n] fresh contiguous
      pages ([n <= unit_pages]), mapping a new block if needed. Pages are
      mapped but not yet faulted — first touch pays the page fault, as in
      the paper. *)

  val blocks_mapped : t -> int
  (** Number of mmap calls performed (the Metis mmap-count statistic). *)
end
