(** Metis: a single-server multithreaded MapReduce computing a word
    position index (section 5.2), scaled down for the simulator.

    One worker per core. The Map phase hashes each input word into one of
    [ncores] partitions and appends a (word, position) entry to the
    per-(mapper, reducer) bucket, allocating bucket pages from the
    {!Block_alloc} allocator — every append touches the entry's page, every
    bucket growth may mmap. The Reduce phase has each reducer walk every
    mapper's bucket for its partition (touching pages another core faulted
    — the pairwise sharing pattern) and build its output table from freshly
    allocated pages. Memory is never returned to the OS, so the workload
    stresses mmap and pagefault but not munmap, exactly as the paper says.

    The allocation unit selects the experiment: 8 MB blocks make the run
    pagefault-bound, 64 KB blocks make it mmap-bound (Figure 4's two
    families of curves). The metric is jobs/hour of simulated time. *)

type report = {
  vm_name : string;
  ncores : int;
  unit_pages : int;
  job_cycles : int;
  jobs_per_hour : float;
  mmaps : int;
  pagefaults : int;
  ipis : int;
}

val pp_report : Format.formatter -> report -> unit

module Make (V : Vm.Vm_intf.S) : sig
  val run :
    ?total_words:int ->
    ?bytes_per_entry:int ->
    unit_pages:int ->
    ncores:int ->
    (Ccsim.Machine.t -> V.t) ->
    report
  (** Run one complete job (map + reduce) on a fresh machine. The input is
      [total_words] words split evenly across workers (default 200_000 —
      scaled from the paper's 4 GB input to simulator scale). *)
end
