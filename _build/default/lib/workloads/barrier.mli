(** Sense-reversing barrier for simulated workloads.

    Workload steps cannot block (the scheduler interleaves whole steps), so
    the barrier is split into a non-blocking [arrive] and a [passed] poll:
    a step arrives once, then keeps polling (with {!Ccsim.Machine.wait_hint}
    between steps) until the generation advances. Arrivals and polls charge
    the barrier's cache line, so barriers themselves cost what they would
    on real hardware. *)

type t

val create : Ccsim.Core.t -> parties:int -> t

val arrive : Ccsim.Core.t -> t -> int
(** Register arrival; returns the generation to wait for. *)

val passed : Ccsim.Core.t -> t -> int -> bool
(** Has the barrier generation moved past the one returned by [arrive]? *)
