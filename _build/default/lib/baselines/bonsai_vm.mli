(** The Bonsai VM baseline (Clements et al., ASPLOS 2012): VMAs in a
    balanced tree supporting lock-free lookups (modeled with a
    copy-on-write tree and an atomically swung root), so page faults take
    no lock at all; mmap and munmap still serialize on a mutex. Shared
    page table, broadcast shootdowns.

    This reproduces the paper's Figure 4/5 behaviour: Bonsai matches
    RadixVM when the workload is fault-heavy (Metis with 8 MB allocation
    units) and collapses when it is mmap-heavy (64 KB units, or the local
    and pipeline microbenchmarks). *)

include Vm.Vm_intf.S

val mmu : t -> Vm.Mmu.t
val vma_count : t -> int
