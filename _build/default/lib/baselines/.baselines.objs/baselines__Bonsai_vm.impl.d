lib/baselines/bonsai_vm.ml: Ccsim Lock Region_vm Structures
