lib/baselines/bonsai_vm.mli: Vm
