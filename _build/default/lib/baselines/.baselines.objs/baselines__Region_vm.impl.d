lib/baselines/region_vm.ml: Bitset Ccsim Core Ipi List Machine Params Physmem Stats Vm
