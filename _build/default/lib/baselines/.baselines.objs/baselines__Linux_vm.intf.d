lib/baselines/linux_vm.mli: Vm
