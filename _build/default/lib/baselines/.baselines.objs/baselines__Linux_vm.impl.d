lib/baselines/linux_vm.ml: Ccsim Region_vm Rwlock Structures
