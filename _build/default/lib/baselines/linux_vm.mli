(** The Linux-like baseline VM (sections 2 and 5): VMAs in a red-black
    tree protected by a single address-space read-write lock, a shared
    hardware page table, and broadcast TLB shootdowns.

    Page faults take the read lock — concurrent faults do not exclude each
    other but serialize on the lock word's cache line, which is why Metis
    on Linux flattens even in the fault-heavy 8 MB configuration. mmap and
    munmap take the write lock and serialize outright. *)

include Vm.Vm_intf.S

val mmu : t -> Vm.Mmu.t
val vma_count : t -> int
(** Live VMA objects (Table 2's "VMA tree" column). *)
