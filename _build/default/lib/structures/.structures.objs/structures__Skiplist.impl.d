lib/structures/skiplist.ml: Array Ccsim Core Line List Option
