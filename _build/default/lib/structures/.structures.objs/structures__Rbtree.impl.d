lib/structures/rbtree.ml: Ccsim Core Line List Option
