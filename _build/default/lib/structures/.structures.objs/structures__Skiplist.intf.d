lib/structures/skiplist.mli: Ccsim
