lib/structures/rbtree.mli: Ccsim
