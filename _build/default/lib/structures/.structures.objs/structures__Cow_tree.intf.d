lib/structures/cow_tree.mli: Ccsim
