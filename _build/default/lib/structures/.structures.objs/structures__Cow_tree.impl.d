lib/structures/cow_tree.ml: Ccsim Cell Core Line
