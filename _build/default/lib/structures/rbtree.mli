(** Imperative red-black tree keyed by int, with charged cache-line costs.

    Models Linux's VMA tree (section 2, Table 2): a balanced tree whose
    inserts and deletes perform rebalancing writes to interior nodes. Under
    the Linux baseline VM these run behind the address-space lock, so their
    cost shows up as hold time; the structure also provides the Table 2
    memory accounting (one ~200-byte VMA object per node). *)

type 'v t

val create : Ccsim.Core.t -> 'v t
val size : 'v t -> int
val is_empty : 'v t -> bool
val find : Ccsim.Core.t -> 'v t -> int -> 'v option
val floor : Ccsim.Core.t -> 'v t -> int -> (int * 'v) option
(** Greatest binding with key <= the argument. *)

val ceiling : Ccsim.Core.t -> 'v t -> int -> (int * 'v) option
(** Least binding with key >= the argument. *)

val insert : Ccsim.Core.t -> 'v t -> int -> 'v -> unit
(** Insert or replace. *)

val remove : Ccsim.Core.t -> 'v t -> int -> bool
val to_alist : 'v t -> (int * 'v) list
(** Uncharged, ascending (for tests). *)

val check_invariants : 'v t -> unit
(** BST order, red nodes have black children, uniform black height. *)
