(** Copy-on-write weight-balanced tree with lock-free lookups — the Bonsai
    design (Clements et al., ASPLOS 2012) that RadixVM is compared against.

    Writers build a new path of nodes and atomically swing a root pointer;
    readers traverse whatever root they observe without taking locks. In
    the cost model this means: lookups touch only immutable node lines
    (cached after first miss) plus the root pointer's line, so concurrent
    page faults scale; but updates are serialized by the caller (the Bonsai
    VM takes a mutex around mmap/munmap) and every update invalidates the
    root line in all readers. *)

type 'v t

val create : Ccsim.Core.t -> 'v t
val size : Ccsim.Core.t -> 'v t -> int
val find : Ccsim.Core.t -> 'v t -> int -> 'v option
val floor : Ccsim.Core.t -> 'v t -> int -> (int * 'v) option
val ceiling : Ccsim.Core.t -> 'v t -> int -> (int * 'v) option
val insert : Ccsim.Core.t -> 'v t -> int -> 'v -> unit
(** Insert or replace. Caller must serialize writers (the VM's mutex). *)

val remove : Ccsim.Core.t -> 'v t -> int -> bool
val to_alist : 'v t -> (int * 'v) list
(** Uncharged, ascending (for tests). *)

val check_invariants : 'v t -> unit
(** BST order and weight balance. *)
