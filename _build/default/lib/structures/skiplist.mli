(** Concurrent skip list with wait-free lookups and lock-free inserts and
    deletes (Herlihy & Shavit), as used by RadixVM's abandoned early design
    and by the Figure 6 comparison.

    The semantics here are an ordered int-keyed map; what the simulator
    measures is the cost structure: a lookup reads the cache line of every
    node it traverses, and an insert or delete *writes* the lines of its
    predecessor nodes at every level. Those interior-node writes are why
    unrelated operations on disjoint keys still contend — the effect
    Figure 6 quantifies and the radix tree eliminates.

    Tower heights are derived deterministically from the key so runs are
    reproducible. *)

type 'v t

val create : ?max_level:int -> Ccsim.Core.t -> 'v t
(** [create core] is an empty list (default [max_level] 16). *)

val find : Ccsim.Core.t -> 'v t -> int -> 'v option
val mem : Ccsim.Core.t -> 'v t -> int -> bool

val insert : Ccsim.Core.t -> 'v t -> int -> 'v -> unit
(** Insert or replace. *)

val remove : Ccsim.Core.t -> 'v t -> int -> bool
(** Remove; [false] if the key was absent. *)

val floor : Ccsim.Core.t -> 'v t -> int -> (int * 'v) option
(** Greatest binding with key <= the argument. *)

val length : 'v t -> int
val to_alist : 'v t -> (int * 'v) list
(** Uncharged, ascending (for tests). *)

val check_invariants : 'v t -> unit
