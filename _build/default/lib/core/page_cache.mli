(** A page cache for file-backed mappings.

    Maps (file, page) to a physical frame shared by every mapping of that
    file page — across cores and across address spaces — with the frame's
    lifetime tracked by the pluggable reference-counting scheme (each
    cached page holds one base reference; every mapping holds one more).
    This is the workload behind the paper's Figure 8: processes repeatedly
    mapping and unmapping shared library pages drive these counts up and
    down from every core.

    Buckets are individually locked and live on their own cache lines, so
    lookups of different files do not contend. A miss "reads from disk"
    (a fixed latency) into a fresh frame. *)

module Make (C : Refcnt.Counter_intf.S) : sig
  type t

  val create : Ccsim.Machine.t -> C.t -> t

  val get : t -> Ccsim.Core.t -> file:int -> page:int -> int * C.handle
  (** The frame caching this file page, loading it on a miss. Takes one
      reference for the caller (dropped when the caller unmaps). *)

  val evict : t -> Ccsim.Core.t -> file:int -> page:int -> unit
  (** Drop the cache's base reference (memory pressure): the frame is
      freed once the last mapping goes away; a later [get] reloads it. *)

  val cached_pages : t -> int
  (** Resident cache entries (for tests). *)
end

val file_content : file:int -> page:int -> int
(** The deterministic content word "on disk" for a file page (what a miss
    loads into the fresh frame). *)
