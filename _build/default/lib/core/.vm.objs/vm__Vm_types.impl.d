lib/core/vm_types.ml: Format
