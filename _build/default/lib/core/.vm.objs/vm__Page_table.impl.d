lib/core/page_table.ml: Array Ccsim Core Hashtbl Line List Machine Params Vm_types
