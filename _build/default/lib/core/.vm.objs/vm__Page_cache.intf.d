lib/core/page_cache.mli: Ccsim Refcnt
