lib/core/mmu.mli: Ccsim Page_table
