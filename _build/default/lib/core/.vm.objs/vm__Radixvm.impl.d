lib/core/radixvm.ml: Bitset Ccsim Core Format Ipi List Machine Mmu Page_cache Page_table Params Physmem Radix Refcnt Stats Vm_types
