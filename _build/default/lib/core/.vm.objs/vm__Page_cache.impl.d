lib/core/page_cache.ml: Array Ccsim Core Hashtbl Lock Machine Params Physmem Refcnt
