lib/core/radixvm.mli: Ccsim Mmu Page_cache Page_table Refcnt Vm_intf Vm_types
