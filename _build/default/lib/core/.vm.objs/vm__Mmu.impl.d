lib/core/mmu.ml: Array Ccsim Core Machine Page_table Params Stats Tlb
