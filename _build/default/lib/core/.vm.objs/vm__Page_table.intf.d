lib/core/page_table.mli: Ccsim
