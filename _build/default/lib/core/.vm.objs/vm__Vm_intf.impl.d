lib/core/vm_intf.ml: Ccsim Vm_types
