(** Shared vocabulary for every VM system in the repository. *)

type prot = Read_only | Read_write

type backing =
  | Anon  (** demand-zero anonymous memory *)
  | File of int  (** file-backed mapping; the int names the file *)

(** Result of a user-level page access. *)
type access_result =
  | Ok  (** translation present or fault handled *)
  | Segfault  (** access to an unmapped page *)

let pp_prot ppf = function
  | Read_only -> Format.pp_print_string ppf "r--"
  | Read_write -> Format.pp_print_string ppf "rw-"

let pp_backing ppf = function
  | Anon -> Format.pp_print_string ppf "anon"
  | File fd -> Format.fprintf ppf "file:%d" fd

let page_size = 4096
(** Bytes per page, for memory-overhead accounting. *)

let ptes_per_page = 512
(** Page-table entries per page-table page (x86-64). *)
