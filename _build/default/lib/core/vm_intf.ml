(** The common interface of every virtual memory system in this repository
    (RadixVM, the Linux-like baseline, the Bonsai baseline), so workloads
    and benchmarks run identical code against all of them.

    Addresses are virtual page numbers; [touch] is a user-level store: TLB
    hit, or hardware page-table walk, or a software page fault into the VM
    system — whichever the configuration implies. *)

module type S = sig
  type t

  val name : string

  val create : Ccsim.Machine.t -> t
  (** Default configuration (each VM also exposes a richer constructor). *)

  val machine : t -> Ccsim.Machine.t

  val mmap :
    t ->
    Ccsim.Core.t ->
    vpn:int ->
    npages:int ->
    ?prot:Vm_types.prot ->
    ?backing:Vm_types.backing ->
    unit ->
    unit
  (** Map [vpn, vpn + npages); replaces any existing mappings in the range
      (with full munmap semantics for the displaced pages). *)

  val munmap : t -> Ccsim.Core.t -> vpn:int -> npages:int -> unit
  (** Unmap the range: after return no core's TLB holds a translation for
      it and the backing frames have been released (possibly lazily, via
      Refcache). *)

  val touch : t -> Ccsim.Core.t -> vpn:int -> Vm_types.access_result
  (** User-level write to one page ([Segfault] on unmapped or read-only
      pages). *)

  val read : t -> Ccsim.Core.t -> vpn:int -> Vm_types.access_result
  (** User-level load from one page. *)

  val mprotect :
    t -> Ccsim.Core.t -> vpn:int -> npages:int -> Vm_types.prot -> unit
  (** Change the protection of a mapped range. Removing write permission
      invalidates cached translations (with shootdowns); granting it is
      lazy. *)

  val mapped : t -> vpn:int -> bool
  (** Uncharged oracle: is the page currently mapped? *)

  val index_bytes : t -> int
  (** Memory used by the address-space index structure (Table 2). *)

  val pt_bytes : t -> int
  (** Memory used by hardware page tables (Table 2, section 5.4). *)
end
