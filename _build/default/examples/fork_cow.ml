(* Process-style memory sharing on RadixVM: fork with copy-on-write and a
   shared file page cache — the workloads that motivate reference counting
   physical pages in the first place (section 3.1: "two virtual memory
   regions may share the same physical pages, such as when forking a
   process").

   Run with: dune exec examples/fork_cow.exe *)

open Ccsim
module R = Vm.Radixvm.Default

let live m = Physmem.live_frames (Machine.physmem m)

let () =
  let machine = Machine.create (Params.default ~ncores:4 ()) in
  let parent = R.create machine in
  let c = Machine.core machine 0 in

  (* A "process" with a 16-page heap, fully faulted, plus an 8-page
     mapping of file 3 (say, a shared library), partially read. *)
  R.mmap parent ~vpn:0x100 ~npages:16 c ();
  for p = 0x100 to 0x10f do
    assert (R.touch parent c ~vpn:p = Vm.Vm_types.Ok)
  done;
  R.mmap parent c ~vpn:0x400 ~npages:8 ~backing:(Vm.Vm_types.File 3) ();
  for p = 0x400 to 0x403 do
    assert (R.read parent c ~vpn:p = Vm.Vm_types.Ok)
  done;
  Printf.printf "parent running: %d frames (16 heap + 4 cached file pages)\n"
    (live machine);

  (* fork: nothing is copied. The heap becomes copy-on-write; the file
     pages are shared through the page cache. *)
  let child = R.fork parent c in
  Printf.printf "after fork:     %d frames (no copies made)\n" (live machine);

  (* The child reads everything — still no copies. *)
  let c1 = Machine.core machine 1 in
  for p = 0x100 to 0x10f do
    assert (R.read child c1 ~vpn:p = Vm.Vm_types.Ok)
  done;
  Printf.printf "child reads:    %d frames (reads share)\n" (live machine);

  (* The child writes 4 heap pages: exactly 4 pages are copied. *)
  for p = 0x100 to 0x103 do
    assert (R.touch child c1 ~vpn:p = Vm.Vm_types.Ok)
  done;
  Printf.printf "child writes 4: %d frames (4 COW copies)\n" (live machine);

  (* Protection is real: make the child's view of the library read-only
     and watch a write get refused. *)
  R.mprotect child c1 ~vpn:0x400 ~npages:8 Vm.Vm_types.Read_only;
  assert (R.touch child c1 ~vpn:0x400 = Vm.Vm_types.Segfault);
  Printf.printf "mprotect works: write to read-only file page refused\n";

  (* Child exits: its private copies die with it (lazily, via Refcache);
     shared pages survive because the parent still references them. *)
  R.destroy child c1;
  Machine.drain machine
    ~cycles:(4 * (Machine.params machine).Params.epoch_cycles);
  Printf.printf "child exits:    %d frames\n" (live machine);

  (* Parent exits too: only the page cache's copies of the file remain. *)
  R.destroy parent c;
  Machine.drain machine
    ~cycles:(4 * (Machine.params machine).Params.epoch_cycles);
  Printf.printf "parent exits:   %d frames (the page cache keeps file pages)\n"
    (live machine);
  Printf.printf "page cache:     %d resident file pages\n"
    (R.cached_file_pages parent);

  (* Memory pressure: evict the cache; now everything is gone. *)
  for p = 0x400 to 0x403 do
    R.evict_file_page parent c ~file:3 ~page:p
  done;
  Machine.drain machine
    ~cycles:(4 * (Machine.params machine).Params.epoch_cycles);
  Printf.printf "cache evicted:  %d frames\n" (live machine)
