(* The motivating scenario from the paper's introduction: a multithreaded
   memory allocator that actually returns memory to the OS.

   Real allocators hoard memory ("Google's memory allocator is reluctant
   to return memory to the OS precisely because of scaling problems with
   munmap"). This example builds a naive allocator that mmaps on every
   allocation and munmaps on every free — the worst case for the VM — and
   runs it on all three VM systems. On RadixVM it scales linearly anyway,
   which is the paper's whole point: no workarounds needed.

   Run with: dune exec examples/scalable_allocator.exe *)

open Ccsim

module Run (V : Vm.Vm_intf.S) = struct
  (* A per-thread pool allocator with zero hoarding: alloc = mmap + touch,
     free = munmap. Each thread's pool lives in its own address range. *)
  let throughput ~ncores ~duration =
    let machine = Machine.create (Params.default ~ncores ()) in
    let vm = V.create machine in
    let ops = ref 0 in
    for c = 0 to ncores - 1 do
      let core = Machine.core machine c in
      let pool_base = (c + 1) * 65536 in
      let next = ref 0 in
      Machine.set_workload machine c (fun () ->
          (* allocate a 2-page object, use it, free it *)
          let vpn = pool_base + (!next mod 8 * 2) in
          incr next;
          V.mmap vm core ~vpn ~npages:2 ();
          ignore (V.touch vm core ~vpn);
          ignore (V.touch vm core ~vpn:(vpn + 1));
          V.munmap vm core ~vpn ~npages:2;
          incr ops;
          true)
    done;
    Machine.run_for machine ~cycles:duration;
    float_of_int !ops /. Machine.seconds machine duration
end

module On_radixvm = Run (Vm.Radixvm.Default)
module On_linux = Run (Baselines.Linux_vm)
module On_bonsai = Run (Baselines.Bonsai_vm)

let () =
  let duration = 1_500_000 in
  Printf.printf
    "alloc/free pairs per second (each pair = mmap + 2 faults + munmap)\n\n";
  Printf.printf "%8s %14s %14s %14s\n" "cores" "RadixVM" "Bonsai" "Linux";
  List.iter
    (fun ncores ->
      let r = On_radixvm.throughput ~ncores ~duration in
      let b = On_bonsai.throughput ~ncores ~duration in
      let l = On_linux.throughput ~ncores ~duration in
      Printf.printf "%8d %14.0f %14.0f %14.0f\n%!" ncores r b l)
    [ 1; 2; 4; 8; 16; 32 ];
  Printf.printf
    "\nRadixVM keeps scaling because per-thread pools touch disjoint pages:\n\
     disjoint radix slots, per-core page tables, no shootdowns, no shared\n\
     cache lines. The baselines serialize on the address-space lock.\n"
