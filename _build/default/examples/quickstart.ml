(* Quickstart: create a simulated multicore machine, build a RadixVM
   address space on it, and run the basic VM operations from several
   cores. Shows the public API end to end and prints what the machine
   observed (faults, shootdowns, cache-line traffic).

   Run with: dune exec examples/quickstart.exe *)

open Ccsim
module Radixvm = Vm.Radixvm.Default

let () =
  (* An 8-core machine (two sockets of the paper's 10-core chips would be
     ncores:20; any size works). *)
  let machine = Machine.create (Params.default ~ncores:8 ()) in
  let vm = Radixvm.create machine in
  let core0 = Machine.core machine 0 in
  let core1 = Machine.core machine 1 in

  (* Map 16 pages of anonymous memory at VPN 0x1000. Like a real kernel,
     mmap allocates no physical memory. *)
  Radixvm.mmap vm core0 ~vpn:0x1000 ~npages:16 ();
  Printf.printf "mapped 16 pages; live frames = %d\n"
    (Physmem.live_frames (Machine.physmem machine));

  (* First touches page-fault and allocate frames; repeats hit the TLB. *)
  for p = 0x1000 to 0x1000 + 15 do
    assert (Radixvm.touch vm core0 ~vpn:p = Vm.Vm_types.Ok)
  done;
  for p = 0x1000 to 0x1000 + 15 do
    assert (Radixvm.touch vm core0 ~vpn:p = Vm.Vm_types.Ok)
  done;
  Printf.printf "after touching: live frames = %d, faults = %d, tlb hits = %d\n"
    (Physmem.live_frames (Machine.physmem machine))
    (Machine.stats machine).Stats.pagefaults
    (Machine.stats machine).Stats.tlb_hits;

  (* Another core sharing the address space touches the same pages: fill
     faults install translations into that core's own page table. *)
  for p = 0x1000 to 0x1000 + 15 do
    assert (Radixvm.touch vm core1 ~vpn:p = Vm.Vm_types.Ok)
  done;
  Printf.printf "core 1 joined: fill faults = %d\n"
    (Machine.stats machine).Stats.fill_faults;

  (* Unmap: the paper's ordering guarantees hold — after munmap returns,
     no core's TLB has the range cached and the frames are on their way
     back (reclaimed lazily through Refcache). Because RadixVM tracks
     exactly which cores used the pages, the shootdown targets only
     core 1. *)
  Radixvm.munmap vm core0 ~vpn:0x1000 ~npages:16;
  Printf.printf "after munmap: IPIs sent = %d (targeted, not broadcast)\n"
    (Machine.stats machine).Stats.ipis;
  assert (Radixvm.touch vm core1 ~vpn:0x1005 = Vm.Vm_types.Segfault);

  (* Let Refcache epochs pass so the frames are actually freed. *)
  Machine.drain machine ~cycles:(3 * (Machine.params machine).Params.epoch_cycles);
  Printf.printf "after two Refcache epochs: live frames = %d\n"
    (Physmem.live_frames (Machine.physmem machine));

  Printf.printf "\nsimulated time: %.3f ms\nmachine stats:\n%s\n"
    (Machine.seconds machine (Machine.elapsed machine) *. 1e3)
    (Format.asprintf "%a" Stats.pp (Machine.stats machine))
