examples/metis_wordcount.mli:
