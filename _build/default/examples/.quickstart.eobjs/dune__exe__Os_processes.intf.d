examples/os_processes.mli:
