examples/quickstart.ml: Ccsim Format Machine Params Physmem Printf Stats Vm
