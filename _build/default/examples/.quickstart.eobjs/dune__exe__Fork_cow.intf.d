examples/fork_cow.mli:
