examples/shared_mapping.ml: Ccsim Machine Params Physmem Printf Refcnt Stats Vm
