examples/scalable_allocator.mli:
