examples/quickstart.mli:
