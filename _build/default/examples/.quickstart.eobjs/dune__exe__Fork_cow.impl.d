examples/fork_cow.ml: Ccsim Machine Params Physmem Printf Vm
