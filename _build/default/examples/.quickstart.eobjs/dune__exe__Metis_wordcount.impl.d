examples/metis_wordcount.ml: Baselines List Printf Vm Workloads
