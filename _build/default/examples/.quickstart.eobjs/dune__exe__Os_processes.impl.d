examples/os_processes.ml: Ccsim List Machine Os Params Physmem Printf String Vm
