examples/shared_mapping.mli:
