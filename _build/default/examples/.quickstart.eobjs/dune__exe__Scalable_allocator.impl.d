examples/scalable_allocator.ml: Baselines Ccsim List Machine Params Printf Vm
