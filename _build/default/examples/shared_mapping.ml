(* Physical page sharing and Refcache in action: the shared-library
   scenario behind Figure 8. Many cores map the same physical page at
   different virtual addresses (like every process mapping libc), so the
   page's reference count is hammered from every core. With Refcache the
   count updates stay in per-core delta caches; the page is freed — once,
   and only after two quiescent epochs — when the last reference drops.

   Run with: dune exec examples/shared_mapping.exe *)

open Ccsim
module Radixvm = Vm.Radixvm.Default
module Counter = Refcnt.Refcache_counter

let () =
  let ncores = 8 in
  let machine = Machine.create (Params.default ~ncores ()) in
  let vm = Radixvm.create machine in
  let core0 = Machine.core machine 0 in

  (* One physical page standing in for a shared library's text page. *)
  let pfn = Physmem.alloc (Machine.physmem machine) core0 in
  let freed = ref false in
  let page_refs =
    Counter.make (Radixvm.counters vm) core0 ~init:1 ~on_free:(fun core ->
        freed := true;
        Physmem.free (Machine.physmem machine) core pfn)
  in

  (* Every core maps the shared page into its own slice of the address
     space and touches it. *)
  for c = 0 to ncores - 1 do
    let core = Machine.core machine c in
    let vpn = (c + 1) * 1024 in
    Radixvm.mmap_shared_frame vm core ~vpn ~npages:1 ~pfn page_refs;
    assert (Radixvm.touch vm core ~vpn = Vm.Vm_types.Ok)
  done;
  Printf.printf "mapped by %d cores; true refcount = %d\n" ncores
    (Counter.value (Radixvm.counters vm) page_refs);

  (* Everyone unmaps. The count falls back to the base reference; the
     page survives. *)
  for c = 0 to ncores - 1 do
    let core = Machine.core machine c in
    Radixvm.munmap vm core ~vpn:((c + 1) * 1024) ~npages:1
  done;
  Machine.drain machine
    ~cycles:(4 * (Machine.params machine).Params.epoch_cycles);
  Printf.printf "all unmapped; refcount = %d, freed = %b\n"
    (Counter.value (Radixvm.counters vm) page_refs)
    !freed;

  (* Drop the base reference: Refcache notices the stable zero at review
     time, two epochs later, and frees the page exactly once. *)
  Counter.dec (Radixvm.counters vm) core0 page_refs;
  Printf.printf "base reference dropped; freed immediately? %b\n" !freed;
  Machine.drain machine
    ~cycles:(4 * (Machine.params machine).Params.epoch_cycles);
  Printf.printf "two epochs later: freed = %b, live frames = %d\n" !freed
    (Physmem.live_frames (Machine.physmem machine));

  Printf.printf
    "\nNote what did NOT happen: no shared counter cache line ping-ponged\n\
     between the %d cores — every inc/dec stayed in a per-core delta cache\n\
     (total cache-line transfers: %d).\n"
    ncores
    (Stats.total_transfers (Machine.stats machine))
