(* A miniature multi-process system on the RadixVM kernel: a parent
   process execs an "application", forks a worker per core, each worker
   grows its own heap with sbrk and fills it, and the parent reaps them.
   Everything underneath — the radix trees, Refcache, per-core page
   tables — is the machinery from the paper; this example shows it wearing
   its intended POSIX face.

   Run with: dune exec examples/os_processes.exe *)

open Ccsim
module K = Os.Kernel

let () =
  let ncores = 4 in
  let machine = Machine.create (Params.default ~ncores ()) in
  let k = K.boot machine in
  let c0 = Machine.core machine 0 in
  let init = K.init_process k in

  (* "Install" an application binary and start it. *)
  let _fd = Os.Vfs.create_file (K.vfs k) ~name:"/bin/app" ~pages:8 in
  let app =
    match K.sys_fork k c0 init with Ok p -> p | Error _ -> assert false
  in
  (match K.sys_exec k c0 app ~path:"/bin/app" with
  | Ok () -> ()
  | Error e -> failwith (K.errno_to_string e));
  (* running code = reading text pages; fault one in through the cache *)
  assert (K.load k c0 app ~vpn:K.text_base <> None);
  Printf.printf "pid %d running /bin/app (8 read-only text pages)\n"
    (K.pid app);

  (* Fork one worker per core; each builds a private heap. *)
  let workers =
    List.init ncores (fun i ->
        let core = Machine.core machine i in
        match K.sys_fork k core app with
        | Ok w -> (i, w)
        | Error e -> failwith (K.errno_to_string e))
  in
  Printf.printf "forked %d workers: pids %s\n" ncores
    (String.concat ", "
       (List.map (fun (_, w) -> string_of_int (K.pid w)) workers));

  List.iter
    (fun (i, w) ->
      let core = Machine.core machine i in
      (match K.sys_sbrk k core w ~pages:16 with
      | Ok _ -> ()
      | Error e -> failwith (K.errno_to_string e));
      for p = 0 to 15 do
        assert (
          K.store k core w ~vpn:(K.heap_base + p) ((K.pid w * 100) + p)
          = Vm.Vm_types.Ok)
      done)
    workers;
  Printf.printf "each worker faulted in a 16-page heap: %d frames live\n"
    (Physmem.live_frames (Machine.physmem machine));

  (* Workers verify their private data (COW isolation) and exit. *)
  List.iter
    (fun (i, w) ->
      let core = Machine.core machine i in
      assert (K.load k core w ~vpn:K.heap_base = Some (K.pid w * 100));
      K.sys_exit k core w ~code:(K.pid w))
    workers;

  (* The parent reaps everyone. *)
  let rec reap acc =
    match K.sys_wait k app with
    | Ok (pid, code) -> reap ((pid, code) :: acc)
    | Error _ -> List.rev acc
  in
  let reaped = reap [] in
  Printf.printf "reaped %d workers (exit codes = their pids: %b)\n"
    (List.length reaped)
    (List.for_all (fun (pid, code) -> pid = code) reaped);

  K.sys_exit k c0 app ~code:0;
  ignore (K.sys_wait k init);
  Machine.drain machine
    ~cycles:(4 * (Machine.params machine).Params.epoch_cycles);
  Printf.printf
    "after everyone exits: %d frames live (the page cache keeps the text)\n"
    (Physmem.live_frames (Machine.physmem machine));
  Printf.printf "simulated time: %.3f ms, %d processes ever created\n"
    (Machine.seconds machine (Machine.elapsed machine) *. 1e3)
    (1 + 1 + ncores)
