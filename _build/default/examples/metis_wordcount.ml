(* Run the Metis MapReduce application (section 5.2) on two VM systems
   and both allocation units, printing the Figure 4 story in miniature:

   - with 8 MB allocation units the run is page-fault bound, and both
     RadixVM and a Bonsai-style VM handle it;
   - with 64 KB units the run is mmap-bound and only RadixVM keeps
     scaling, because its mmaps on disjoint ranges do not serialize.

   Run with: dune exec examples/metis_wordcount.exe *)

module Metis_radix = Workloads.Metis.Make (Vm.Radixvm.Default)
module Metis_linux = Workloads.Metis.Make (Baselines.Linux_vm)

let () =
  let words = 100_000 in
  Printf.printf
    "Metis word-position index, %d words, simulated machine\n\n" words;
  List.iter
    (fun (label, unit_pages) ->
      Printf.printf "--- allocation unit: %s ---\n" label;
      List.iter
        (fun ncores ->
          let radix =
            Metis_radix.run ~total_words:words ~unit_pages ~ncores
              Vm.Radixvm.Default.create
          in
          let linux =
            Metis_linux.run ~total_words:words ~unit_pages ~ncores
              Baselines.Linux_vm.create
          in
          Printf.printf
            "%3d cores: RadixVM %8.1f jobs/hr (%5d mmaps) | Linux %8.1f jobs/hr\n%!"
            ncores radix.Workloads.Metis.jobs_per_hour
            radix.Workloads.Metis.mmaps linux.Workloads.Metis.jobs_per_hour)
        [ 1; 4; 16 ];
      print_newline ())
    [ ("8 MB (fault-bound)", 2048); ("64 KB (mmap-bound)", 16) ]
